#include "core/evaluate.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/rng.h"
#include "graph/visit_marker.h"
#include "sampling/parallel.h"
#include "sampling/reliability.h"
#include "sampling/rss.h"

namespace relmax {
namespace {

RssOptions MakeRssOptions(const SolverOptions& options, int num_samples,
                          uint64_t seed_salt) {
  RssOptions rss = options.rss;
  rss.num_samples = num_samples;
  rss.seed = options.seed ^ (seed_salt * 0x9e3779b97f4a7c15ULL + 1);
  rss.num_threads = options.num_threads;
  return rss;
}

}  // namespace

double EstimateWithOptions(const UncertainGraph& g, NodeId s, NodeId t,
                           const SolverOptions& options, uint64_t seed_salt) {
  if (options.estimator == Estimator::kRss) {
    RssSampler sampler(g, MakeRssOptions(options, options.num_samples,
                                         seed_salt));
    return sampler.Reliability(s, t);
  }
  return EstimateReliability(
      g, s, t,
      {.num_samples = options.num_samples,
       .seed = options.seed ^ (seed_salt * 0x9e3779b97f4a7c15ULL + 1),
       .num_threads = options.num_threads});
}

std::vector<double> FromSourceWithOptions(const UncertainGraph& g, NodeId s,
                                          const SolverOptions& options,
                                          uint64_t seed_salt) {
  if (options.estimator == Estimator::kRss) {
    RssSampler sampler(
        g, MakeRssOptions(options, options.elimination_samples, seed_salt));
    return sampler.FromSource(s);
  }
  return ReliabilityFromSource(
      g, s,
      {.num_samples = options.elimination_samples,
       .seed = options.seed ^ (seed_salt * 0x9e3779b97f4a7c15ULL + 3),
       .num_threads = options.num_threads});
}

std::vector<double> ToTargetWithOptions(const UncertainGraph& g, NodeId t,
                                        const SolverOptions& options,
                                        uint64_t seed_salt) {
  if (options.estimator == Estimator::kRss) {
    RssSampler sampler(
        g, MakeRssOptions(options, options.elimination_samples, seed_salt));
    return sampler.ToTarget(t);
  }
  return ReliabilityToTarget(
      g, t,
      {.num_samples = options.elimination_samples,
       .seed = options.seed ^ (seed_salt * 0x9e3779b97f4a7c15ULL + 5),
       .num_threads = options.num_threads});
}

UncertainGraph AugmentGraph(const UncertainGraph& g,
                            const std::vector<Edge>& edges) {
  UncertainGraph augmented = g;
  for (const Edge& e : edges) {
    const Status st = augmented.AddEdge(e.src, e.dst, e.prob);
    RELMAX_DCHECK(st.ok() || st.code() == StatusCode::kAlreadyExists);
    (void)st;
  }
  return augmented;
}

PathUnionSubgraph::PathUnionSubgraph(const UncertainGraph& base, NodeId s,
                                     NodeId t)
    : base_(base),
      graph_(base.directed() ? UncertainGraph::Directed(0)
                             : UncertainGraph::Undirected(0)),
      remap_(base.num_nodes(), kInvalidNode) {
  s_ = Map(s);
  t_ = Map(t);
}

NodeId PathUnionSubgraph::Map(NodeId v) {
  RELMAX_DCHECK(v < remap_.size());
  if (remap_[v] == kInvalidNode) remap_[v] = graph_.AddNode();
  return remap_[v];
}

void PathUnionSubgraph::AddPath(const PathResult& path) {
  for (size_t i = 0; i + 1 < path.nodes.size(); ++i) {
    const NodeId u = path.nodes[i];
    const NodeId v = path.nodes[i + 1];
    const NodeId su = Map(u);
    const NodeId sv = Map(v);
    if (graph_.HasEdge(su, sv)) continue;
    const auto prob = base_.EdgeProb(u, v);
    RELMAX_DCHECK(prob.has_value());
    const Status st = graph_.AddEdge(su, sv, *prob);
    RELMAX_DCHECK(st.ok());
    (void)st;
  }
}

double PathUnionSubgraph::Reliability(const SolverOptions& options,
                                      uint64_t seed_salt) const {
  return EstimateWithOptions(graph_, s_, t_, options, seed_salt);
}

namespace {

// Per-lane scratch for the shared-world estimators below: one RNG (reseeded
// per shard from its counter-based stream) plus BFS buffers and an integer
// tally that folds commutatively into the shared result.
struct WorldContext {
  explicit WorldContext(const UncertainGraph& g, size_t tally_size)
      : rng(0),
        present(g.num_edges()),
        visited(g.num_nodes()),
        tally(tally_size, 0) {
    queue.reserve(g.num_nodes());
  }

  // Flips every logical edge once: one shared world for all pairs.
  void SampleWorld(const UncertainGraph& g) {
    for (size_t e = 0; e < g.num_edges(); ++e) {
      present[e] =
          rng.NextBernoulli(g.EdgeById(static_cast<EdgeId>(e)).prob) ? 1 : 0;
    }
  }

  // BFS from `seeds` over the sampled world.
  void Traverse(const UncertainGraph& g, const std::vector<NodeId>& seeds) {
    visited.NewEpoch();
    queue.clear();
    for (NodeId s : seeds) {
      if (visited.Visit(s)) queue.push_back(s);
    }
    Flood(g);
  }

  // Single-seed variant: no seed-vector temporary in the per-source loop.
  void Traverse(const UncertainGraph& g, NodeId seed) {
    visited.NewEpoch();
    queue.clear();
    visited.Visit(seed);
    queue.push_back(seed);
    Flood(g);
  }

  void Flood(const UncertainGraph& g) {
    for (size_t head = 0; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      for (const Arc& arc : g.OutArcs(u)) {
        if (!present[arc.edge_id] || visited.Visited(arc.to)) continue;
        visited.Visit(arc.to);
        queue.push_back(arc.to);
      }
    }
  }

  Rng rng;
  std::vector<char> present;
  VisitMarker visited;
  std::vector<NodeId> queue;
  std::vector<int64_t> tally;
};

}  // namespace

std::vector<std::vector<double>> PairwiseReliability(
    const UncertainGraph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, int num_samples, uint64_t seed,
    int num_threads) {
  RELMAX_CHECK(num_samples > 0);
  const NodeId n = g.num_nodes();
  for (NodeId v : sources) RELMAX_CHECK(v < n);
  for (NodeId v : targets) RELMAX_CHECK(v < n);

  const std::vector<SampleShard> shards = MakeSampleShards(num_samples, seed);
  // Flattened |S| x |T| hit counts.
  std::vector<int64_t> hits(sources.size() * targets.size(), 0);
  ForEachShard(
      shards.size(), num_threads,
      [&] { return std::make_unique<WorldContext>(g, hits.size()); },
      [&](std::unique_ptr<WorldContext>& ctx, size_t i) {
        ctx->rng.Reseed(shards[i].seed);
        for (int sample = 0; sample < shards[i].num_samples; ++sample) {
          ctx->SampleWorld(g);
          for (size_t si = 0; si < sources.size(); ++si) {
            ctx->Traverse(g, sources[si]);
            for (size_t ti = 0; ti < targets.size(); ++ti) {
              if (ctx->visited.Visited(targets[ti])) {
                ++ctx->tally[si * targets.size() + ti];
              }
            }
          }
        }
      },
      [&](std::unique_ptr<WorldContext>& ctx) {
        for (size_t i = 0; i < hits.size(); ++i) hits[i] += ctx->tally[i];
      });

  std::vector<std::vector<double>> result(
      sources.size(), std::vector<double>(targets.size(), 0.0));
  for (size_t si = 0; si < sources.size(); ++si) {
    for (size_t ti = 0; ti < targets.size(); ++ti) {
      result[si][ti] =
          static_cast<double>(hits[si * targets.size() + ti]) / num_samples;
    }
  }
  return result;
}

double InfluenceSpread(const UncertainGraph& g,
                       const std::vector<NodeId>& sources,
                       const std::vector<NodeId>& targets, int num_samples,
                       uint64_t seed, int num_threads) {
  RELMAX_CHECK(num_samples > 0);
  const NodeId n = g.num_nodes();
  for (NodeId v : sources) RELMAX_CHECK(v < n);
  for (NodeId v : targets) RELMAX_CHECK(v < n);

  const std::vector<SampleShard> shards = MakeSampleShards(num_samples, seed);
  int64_t reached_targets = 0;
  ForEachShard(
      shards.size(), num_threads,
      [&] { return std::make_unique<WorldContext>(g, 1); },
      [&](std::unique_ptr<WorldContext>& ctx, size_t i) {
        ctx->rng.Reseed(shards[i].seed);
        for (int sample = 0; sample < shards[i].num_samples; ++sample) {
          ctx->SampleWorld(g);
          ctx->Traverse(g, sources);
          for (NodeId t : targets) {
            ctx->tally[0] += ctx->visited.Visited(t) ? 1 : 0;
          }
        }
      },
      [&](std::unique_ptr<WorldContext>& ctx) {
        reached_targets += ctx->tally[0];
      });
  return static_cast<double>(reached_targets) / num_samples;
}

double AggregateMatrix(const std::vector<std::vector<double>>& matrix,
                       Aggregate agg) {
  RELMAX_CHECK(!matrix.empty() && !matrix[0].empty());
  double sum = 0.0;
  double mn = 1.0;
  double mx = 0.0;
  size_t count = 0;
  for (const auto& row : matrix) {
    for (double r : row) {
      sum += r;
      mn = std::min(mn, r);
      mx = std::max(mx, r);
      ++count;
    }
  }
  switch (agg) {
    case Aggregate::kAverage:
      return sum / static_cast<double>(count);
    case Aggregate::kMinimum:
      return mn;
    case Aggregate::kMaximum:
      return mx;
  }
  return 0.0;
}

}  // namespace relmax
