#include "core/budget_extension.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "core/candidates.h"
#include "core/evaluate.h"
#include "core/selection.h"
#include "paths/yen.h"
#include "sampling/reliability.h"

namespace relmax {
namespace {

uint64_t PairKey(const UncertainGraph& g, NodeId u, NodeId v) {
  if (!g.directed() && u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

StatusOr<BudgetedSolution> MaximizeReliabilityWithProbabilityBudget(
    const UncertainGraph& g, NodeId s, NodeId t,
    const BudgetOptions& budget_options, const SolverOptions& options) {
  if (s >= g.num_nodes() || t >= g.num_nodes()) {
    return Status::OutOfRange("query node out of range");
  }
  if (budget_options.total_budget <= 0.0) {
    return Status::InvalidArgument("total_budget must be positive");
  }
  if (budget_options.max_edges <= 0 || budget_options.units <= 0) {
    return Status::InvalidArgument("max_edges and units must be positive");
  }
  if (budget_options.max_edge_prob <= 0.0 ||
      budget_options.max_edge_prob > 1.0) {
    return Status::InvalidArgument("max_edge_prob must be in (0, 1]");
  }

  BudgetedSolution solution;
  solution.reliability_before = EstimateWithOptions(g, s, t, options, 0xb0d);
  if (s == t) {
    solution.reliability_before = 1.0;
    solution.reliability_after = 1.0;
    return solution;
  }

  // Candidate edges via the standard elimination; the optimistic cap
  // probability is used for path discovery (a path matters if it *could*
  // matter under the best allocation).
  SolverOptions elimination_options = options;
  elimination_options.zeta = budget_options.max_edge_prob;
  auto candidates = SelectCandidates(g, s, t, elimination_options);
  RELMAX_RETURN_IF_ERROR(candidates.status());

  const UncertainGraph g_plus = AugmentGraph(g, candidates->edges);
  std::vector<NodeId> nodes;
  std::unordered_set<NodeId> seen;
  auto push = [&](NodeId v) {
    if (seen.insert(v).second) nodes.push_back(v);
  };
  push(s);
  push(t);
  for (NodeId v : candidates->from_source) push(v);
  for (NodeId v : candidates->to_target) push(v);
  auto sub_or = g_plus.InducedSubgraph(nodes);
  RELMAX_RETURN_IF_ERROR(sub_or.status());
  std::vector<PathResult> paths =
      TopLReliablePaths(*sub_or, 0, 1, options.top_l);
  for (PathResult& path : paths) {
    for (NodeId& v : path.nodes) v = nodes[v];
  }
  if (paths.empty()) {
    solution.reliability_after = solution.reliability_before;
    return solution;
  }

  // Candidate lookup and the evaluation skeleton: the union of all path
  // edges, with candidate edges' probabilities supplied by the allocation.
  std::unordered_map<uint64_t, int> candidate_index;
  for (int i = 0; i < static_cast<int>(candidates->edges.size()); ++i) {
    candidate_index.emplace(
        PairKey(g, candidates->edges[i].src, candidates->edges[i].dst), i);
  }
  struct SkeletonEdge {
    NodeId src;
    NodeId dst;
    double base_prob;      // probability for non-candidate edges
    int candidate = -1;    // allocation index for candidate edges
  };
  std::vector<SkeletonEdge> skeleton;
  std::unordered_map<NodeId, NodeId> remap;
  std::unordered_set<uint64_t> skeleton_keys;
  auto map_node = [&](NodeId v) {
    auto [it, inserted] = remap.emplace(v, static_cast<NodeId>(remap.size()));
    return it->second;
  };
  const NodeId sub_s = map_node(s);
  const NodeId sub_t = map_node(t);
  std::set<int> relevant;  // candidate indices on any top-l path
  for (const PathResult& path : paths) {
    for (size_t i = 0; i + 1 < path.nodes.size(); ++i) {
      const NodeId u = path.nodes[i];
      const NodeId v = path.nodes[i + 1];
      if (!skeleton_keys.insert(PairKey(g_plus, u, v)).second) continue;
      SkeletonEdge edge{map_node(u), map_node(v), 0.0, -1};
      auto cand = candidate_index.find(PairKey(g, u, v));
      if (cand != candidate_index.end()) {
        edge.candidate = cand->second;
        relevant.insert(cand->second);
      } else {
        const auto prob = g.EdgeProb(u, v);
        RELMAX_DCHECK(prob.has_value());
        edge.base_prob = *prob;
      }
      skeleton.push_back(edge);
    }
  }

  std::unordered_map<int, double> allocation;  // candidate -> probability
  auto evaluate = [&](const std::unordered_map<int, double>& alloc,
                      uint64_t salt) {
    UncertainGraph eval =
        g.directed() ? UncertainGraph::Directed(
                           static_cast<NodeId>(remap.size()))
                     : UncertainGraph::Undirected(
                           static_cast<NodeId>(remap.size()));
    for (const SkeletonEdge& e : skeleton) {
      double p = e.base_prob;
      if (e.candidate >= 0) {
        auto it = alloc.find(e.candidate);
        p = it == alloc.end() ? 0.0 : it->second;
      }
      if (p <= 0.0) continue;
      (void)eval.AddEdge(e.src, e.dst, p);
    }
    SolverOptions eval_options = options;
    return EstimateWithOptions(eval, sub_s, sub_t, eval_options, salt);
  };

  const double unit =
      budget_options.total_budget / static_cast<double>(budget_options.units);
  double remaining = budget_options.total_budget;
  uint64_t round = 0;
  while (remaining > 1e-12) {
    ++round;
    const double current = evaluate(allocation, round);
    int best = -1;
    double best_gain = 0.0;
    for (int c : relevant) {
      const auto it = allocation.find(c);
      const double now = it == allocation.end() ? 0.0 : it->second;
      if (now == 0.0 &&
          static_cast<int>(allocation.size()) >= budget_options.max_edges) {
        continue;  // cannot open another distinct edge
      }
      const double bumped =
          std::min(now + std::min(unit, remaining),
                   budget_options.max_edge_prob);
      if (bumped <= now + 1e-12) continue;  // already at the cap
      std::unordered_map<int, double> trial = allocation;
      trial[c] = bumped;
      const double gain = evaluate(trial, round) - current;
      if (best < 0 || gain > best_gain) {
        best_gain = gain;
        best = c;
      }
    }
    // Stop only when no candidate can accept more mass. A best gain at or
    // below zero is not a stop signal: an individual unit's marginal gain
    // can drown in sampling noise even though the accumulated allocation
    // helps, so the budget is always placed on the current argmax.
    if (best < 0) break;
    const double now =
        allocation.count(best) > 0 ? allocation[best] : 0.0;
    const double bumped = std::min(now + std::min(unit, remaining),
                                   budget_options.max_edge_prob);
    remaining -= bumped - now;
    allocation[best] = bumped;
  }

  for (const auto& [c, p] : allocation) {
    Edge edge = candidates->edges[c];
    edge.prob = p;
    solution.added_edges.push_back(edge);
    solution.budget_used += p;
  }
  std::sort(solution.added_edges.begin(), solution.added_edges.end(),
            [](const Edge& a, const Edge& b) {
              return a.src != b.src ? a.src < b.src : a.dst < b.dst;
            });
  solution.reliability_after =
      solution.added_edges.empty()
          ? solution.reliability_before
          : EstimateWithOptions(AugmentGraph(g, solution.added_edges), s, t,
                                options, 0xb0d);
  return solution;
}

}  // namespace relmax
