#include "apps/sensor.h"

#include "core/evaluate.h"
#include "core/solver.h"

namespace relmax {

std::vector<Edge> SensorCandidateLinks(const Dataset& network,
                                       double max_distance_m,
                                       double link_prob) {
  std::vector<Edge> candidates;
  const UncertainGraph& g = network.graph;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (u == v || g.HasEdge(u, v)) continue;
      if (!g.directed() && u > v) continue;
      if (DistanceMeters(network, u, v) > max_distance_m) continue;
      candidates.push_back({u, v, link_prob});
    }
  }
  return candidates;
}

StatusOr<SensorCaseResult> ImproveSensorPair(const Dataset& network,
                                             NodeId source, NodeId target,
                                             int budget, double link_prob,
                                             double max_distance_m,
                                             const SolverOptions& options) {
  const UncertainGraph& g = network.graph;
  if (source >= g.num_nodes() || target >= g.num_nodes()) {
    return Status::OutOfRange("sensor id out of range");
  }
  if (network.positions.size() != g.num_nodes()) {
    return Status::FailedPrecondition("dataset has no sensor positions");
  }

  // Distance-constrained candidate pool instead of the h-hop rule: the
  // physical layout decides which links are buildable.
  CandidateSet candidates;
  candidates.edges = SensorCandidateLinks(network, max_distance_m, link_prob);

  SolverOptions solver_options = options;
  solver_options.budget_k = budget;
  solver_options.zeta = link_prob;
  auto solution = MaximizeReliabilityWithCandidates(
      g, source, target, candidates, solver_options,
      CoreMethod::kBatchEdges);
  RELMAX_RETURN_IF_ERROR(solution.status());

  SensorCaseResult result;
  result.source = source;
  result.target = target;
  result.reliability_before = solution->reliability_before;
  result.reliability_after = solution->reliability_after;
  result.new_links = solution->added_edges;
  return result;
}

}  // namespace relmax
