#include "apps/influence.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"
#include "core/candidates.h"
#include "core/evaluate.h"
#include "core/selection.h"
#include "paths/yen.h"

namespace relmax {

StatusOr<CollaborationScenario> MakeCollaborationScenario(
    const UncertainGraph& g, int num_seniors, int num_juniors,
    uint64_t seed) {
  if (num_seniors <= 0 || num_juniors <= 0) {
    return Status::InvalidArgument("group sizes must be positive");
  }
  const NodeId n = g.num_nodes();
  std::vector<NodeId> by_degree(n);
  for (NodeId v = 0; v < n; ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(), [&](NodeId a, NodeId b) {
    const size_t da = g.OutArcs(a).size();
    const size_t db = g.OutArcs(b).size();
    return da != db ? da > db : a < b;
  });

  const size_t top5 = std::max<size_t>(num_seniors, n / 20);
  std::vector<NodeId> senior_pool(by_degree.begin(),
                                  by_degree.begin() + std::min<size_t>(top5, n));
  // Juniors: the low-degree band — degree within the bottom quartile (at
  // least covering degrees 1..3, matching the paper's 1-3-paper authors).
  const size_t p25_degree =
      g.OutArcs(by_degree[n - std::max<NodeId>(1, n / 4)]).size();
  const size_t junior_cutoff = std::max<size_t>(3, p25_degree);
  std::vector<NodeId> junior_pool;
  for (NodeId v : by_degree) {
    const size_t deg = g.OutArcs(v).size();
    if (deg >= 1 && deg <= junior_cutoff) junior_pool.push_back(v);
  }
  if (static_cast<int>(senior_pool.size()) < num_seniors ||
      static_cast<int>(junior_pool.size()) < num_juniors) {
    return Status::FailedPrecondition(
        "graph lacks enough high/low degree nodes for the scenario");
  }

  Rng rng(seed);
  std::shuffle(senior_pool.begin(), senior_pool.end(), rng);
  std::shuffle(junior_pool.begin(), junior_pool.end(), rng);
  CollaborationScenario scenario;
  std::unordered_set<NodeId> taken;
  for (NodeId v : senior_pool) {
    if (static_cast<int>(scenario.seniors.size()) >= num_seniors) break;
    if (taken.insert(v).second) scenario.seniors.push_back(v);
  }
  for (NodeId v : junior_pool) {
    if (static_cast<int>(scenario.juniors.size()) >= num_juniors) break;
    if (taken.insert(v).second) scenario.juniors.push_back(v);
  }
  if (static_cast<int>(scenario.seniors.size()) < num_seniors ||
      static_cast<int>(scenario.juniors.size()) < num_juniors) {
    return Status::FailedPrecondition("senior/junior pools overlap too much");
  }
  return scenario;
}

StatusOr<InfluenceResult> MaximizeInfluenceSpread(
    const UncertainGraph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, const SolverOptions& options,
    int pair_cap) {
  if (sources.empty() || targets.empty()) {
    return Status::InvalidArgument("sources and targets must be non-empty");
  }
  if (pair_cap <= 0) return Status::InvalidArgument("pair_cap positive");

  InfluenceResult result;
  result.spread_before = InfluenceSpread(g, sources, targets,
                                         options.num_samples,
                                         options.seed ^ 0xbefe,
                                         options.num_threads);

  auto candidates = SelectCandidatesMulti(g, sources, targets, options);
  RELMAX_RETURN_IF_ERROR(candidates.status());
  const UncertainGraph g_plus = AugmentGraph(g, candidates->edges);

  // Induced working subgraph: query nodes + eliminated sets.
  std::vector<NodeId> nodes;
  std::unordered_set<NodeId> seen;
  auto push = [&](NodeId v) {
    if (seen.insert(v).second) nodes.push_back(v);
  };
  for (NodeId v : sources) push(v);
  for (NodeId v : targets) push(v);
  for (NodeId v : candidates->from_source) push(v);
  for (NodeId v : candidates->to_target) push(v);
  auto sub_or = g_plus.InducedSubgraph(nodes);
  RELMAX_RETURN_IF_ERROR(sub_or.status());
  const UncertainGraph& sub = *sub_or;
  std::vector<NodeId> to_sub(g_plus.num_nodes(), kInvalidNode);
  for (size_t i = 0; i < nodes.size(); ++i) {
    to_sub[nodes[i]] = static_cast<NodeId>(i);
  }

  // Path pooling over a capped, deterministic round-robin of (s, t) pairs.
  std::vector<PathResult> pool;
  Rng rng(options.seed ^ 0x1f1);
  int pairs_used = 0;
  for (size_t step = 0;
       step < sources.size() * targets.size() && pairs_used < pair_cap;
       ++step) {
    const NodeId s = sources[step % sources.size()];
    const NodeId t = targets[(step * 7 + rng.NextUint64(targets.size())) %
                             targets.size()];
    ++pairs_used;
    std::vector<PathResult> paths =
        TopLReliablePaths(sub, to_sub[s], to_sub[t], options.top_l);
    for (PathResult& path : paths) {
      for (NodeId& v : path.nodes) v = nodes[v];
      pool.push_back(std::move(path));
    }
  }
  const std::vector<AnnotatedPath> annotated =
      AnnotatePaths(g_plus, pool, candidates->edges);

  // Batch selection scored on the spread over the union subgraph (all
  // sources/targets mapped; paths define the candidate wiring).
  std::vector<NodeId> sub_sources;
  std::vector<NodeId> sub_targets;
  for (NodeId s : sources) sub_sources.push_back(to_sub[s]);
  for (NodeId t : targets) sub_targets.push_back(to_sub[t]);
  auto objective = [&](const std::vector<int>& selected, uint64_t salt) {
    UncertainGraph union_graph =
        sub.directed() ? UncertainGraph::Directed(sub.num_nodes())
                       : UncertainGraph::Undirected(sub.num_nodes());
    for (int i : selected) {
      const PathResult& path = annotated[i].path;
      for (size_t j = 0; j + 1 < path.nodes.size(); ++j) {
        const NodeId u = to_sub[path.nodes[j]];
        const NodeId v = to_sub[path.nodes[j + 1]];
        if (union_graph.HasEdge(u, v)) continue;
        const auto prob = sub.EdgeProb(u, v);
        RELMAX_DCHECK(prob.has_value());
        (void)union_graph.AddEdge(u, v, *prob);
      }
    }
    return InfluenceSpread(union_graph, sub_sources, sub_targets,
                           options.num_samples, options.seed ^ salt,
                           options.num_threads);
  };
  const std::vector<int> indices = SelectEdgesByPathBatchesObjective(
      annotated, options.budget_k, objective);
  for (int i : indices) {
    result.recommended_edges.push_back(candidates->edges[i]);
  }

  result.spread_after = InfluenceSpread(
      AugmentGraph(g, result.recommended_edges), sources, targets,
      options.num_samples, options.seed ^ 0xafe, options.num_threads);
  return result;
}

}  // namespace relmax
