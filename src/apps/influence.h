#ifndef RELMAX_APPS_INFLUENCE_H_
#define RELMAX_APPS_INFLUENCE_H_

#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// Targeted influence maximization by edge addition (paper §8.4.2, Figure
/// 8): under the independent-cascade model, activation equals possible-world
/// reachability, so recommending k new connections that maximize the spread
/// from a seed group S into a target group T is an instance of
/// multiple-source-target reliability maximization.

/// The DBLP scenario: `seniors` (high-degree authors) campaign to
/// `juniors` (low-degree authors).
struct CollaborationScenario {
  std::vector<NodeId> seniors;
  std::vector<NodeId> juniors;
};

/// Picks `num_seniors` nodes uniformly among the top 5% by degree and
/// `num_juniors` uniformly among degree 1..3 nodes (the paper's 1-3-paper
/// junior group), disjoint.
StatusOr<CollaborationScenario> MakeCollaborationScenario(
    const UncertainGraph& g, int num_seniors, int num_juniors, uint64_t seed);

/// Result of influence maximization by edge addition.
struct InfluenceResult {
  std::vector<Edge> recommended_edges;
  double spread_before = 0.0;  ///< E[#influenced targets], Equation 13
  double spread_after = 0.0;
};

/// Adds up to `options.budget_k` edges maximizing Inf(S, T): candidate
/// generation by multi-source elimination, path pooling over a capped set of
/// (s, t) pairs, and batch selection scored directly on the influence-spread
/// objective. `pair_cap` bounds the pairs used for path pooling (|S||T| can
/// be large; the spread objective itself always uses all of S and T).
StatusOr<InfluenceResult> MaximizeInfluenceSpread(
    const UncertainGraph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, const SolverOptions& options,
    int pair_cap = 64);

}  // namespace relmax

#endif  // RELMAX_APPS_INFLUENCE_H_
