#ifndef RELMAX_APPS_SENSOR_H_
#define RELMAX_APPS_SENSOR_H_

#include <vector>

#include "common/status.h"
#include "core/candidates.h"
#include "core/types.h"
#include "gen/datasets.h"
#include "graph/uncertain_graph.h"

namespace relmax {

/// Sensor-network case-study substrate (paper §8.4.1, Figures 6–7): the
/// Intel-Lab-style 54-sensor network with physical-distance-constrained new
/// links.

/// Candidate links between sensors at most `max_distance_m` apart, each with
/// probability `link_prob` (the paper uses the network's average link
/// probability, 0.33, and a 15 m limit). Existing links are excluded.
std::vector<Edge> SensorCandidateLinks(const Dataset& network,
                                       double max_distance_m,
                                       double link_prob);

/// Result of the case study on one sensor pair.
struct SensorCaseResult {
  NodeId source = 0;
  NodeId target = 0;
  double reliability_before = 0.0;
  double reliability_after = 0.0;
  std::vector<Edge> new_links;
};

/// Runs the paper's case study: add up to `budget` new short-distance links
/// maximizing the source→target delivery reliability, using the BE solver
/// over the distance-constrained candidate set.
StatusOr<SensorCaseResult> ImproveSensorPair(const Dataset& network,
                                             NodeId source, NodeId target,
                                             int budget, double link_prob,
                                             double max_distance_m,
                                             const SolverOptions& options);

}  // namespace relmax

#endif  // RELMAX_APPS_SENSOR_H_
