#!/usr/bin/env bash
# Codegen gate for the blocked lane kernel: PropagateBlock (the inner loop of
# the WorldBank reachability fixpoint, sampling/bitlane.h) must actually
# compile to vector code. The kernel is written branch-free with __restrict
# precisely so the autovectorizer takes it; an innocent-looking edit (a
# conditional store, an aliasing pointer, a changed loop bound) can silently
# drop it back to scalar and cost the fixpoint most of its throughput.
# This compiles an out-of-line instantiation with -fopt-info-vec and fails
# unless GCC reports the bitlane.h loop as vectorized.
#
# Usage: tools/check_vectorization.sh
#   CXX    compiler to probe (default: g++)
#   MARCH  target flag (default: -march=x86-64-v3, i.e. AVX2 baseline)
set -euo pipefail
cd "$(dirname "$0")/.."

CXX="${CXX:-g++}"
MARCH="${MARCH:--march=x86-64-v3}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cat > "$tmp/probe.cc" <<'EOF'
#include "sampling/bitlane.h"
// Out-of-line instantiation so the vectorizer report points at the
// PropagateBlock loop inside bitlane.h rather than an inlined caller.
uint64_t Probe(const uint64_t* __restrict src, const uint64_t* __restrict up,
               uint64_t* __restrict dst) {
  return relmax::bitlane::PropagateBlock(src, up, dst);
}
EOF

report="$("$CXX" -std=c++20 -O3 "$MARCH" -DNDEBUG -Isrc -fopt-info-vec \
    -c "$tmp/probe.cc" -o "$tmp/probe.o" 2>&1)" || {
  echo "$report"
  echo "FAIL: probe did not compile" >&2
  exit 1
}
echo "$report"

if ! grep -q 'bitlane\.h:[0-9]*:[0-9]*: optimized: loop vectorized' \
    <<<"$report"; then
  echo "FAIL: PropagateBlock inner loop is no longer vectorized" \
       "($CXX $MARCH). Check sampling/bitlane.h for branches or aliasing" \
       "introduced into the blocked kernel." >&2
  exit 1
fi
echo "OK: PropagateBlock vectorized ($CXX $MARCH)"
