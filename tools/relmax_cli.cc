// relmax — command-line driver for the library.
//
//   relmax gen      --dataset lastfm --scale 0.1 --out graph.txt
//   relmax stats    --graph graph.txt
//   relmax estimate --graph graph.txt --s 3 --t 99 [--estimator rss]
//   relmax solve    --graph graph.txt --s 3 --t 99 --k 10 --zeta 0.5
//   relmax multi    --graph graph.txt --sources 1,2 --targets 8,9
//                   --aggregate min --k 10
//   relmax budget   --graph graph.txt --s 3 --t 99 --budget 2.0 --max-edges 5
//   relmax batch    --graph graph.txt --queries queries.txt [--estimator rss]
//                   [--index] [--index-file index.rmx]
//   relmax index    save --graph graph.txt --index-file index.rmx
//   relmax index    load --graph graph.txt --index-file index.rmx
//   relmax serve    --graph graph.txt [--port 0] [--window-us 2000]
//                   [--max-batch 256] [--max-queue 1024] [--lanes 1]
//
// Every command accepts --seed and prints deterministic results. Sampling
// commands accept --threads N (0 = all cores); results do not depend on it.
// Greedy solvers accept --reuse-worlds=0 to disable the shared possible-world
// bank (common random numbers) and re-sample per evaluation instead; `batch`
// honors the same flag for its shared multi-query world bank, and with
// --index answers from the offline per-world connectivity index
// (bit-identical to the flood path; prints an extra `index:` stats line).
// --index-file persists that index as one mmap-able file (index/index_io.h):
// `index save` builds and writes it, `index load` validates and loads it, and
// `batch --index-file` loads it when present (O(file size), no sampling) or
// builds and saves it when missing, printing an `index_io:` stats line.
// Bank-backed commands accept --partitions N (default 1): >1 edge-cut
// partitions the graph and shards the bank's bit-matrix, turning the bank
// byte cap into a per-shard budget. Results are bit-identical for any value.
// `serve` holds the graph (and warm bank / loaded index) resident and answers
// a line protocol on stdin (or a loopback TCP port with --port; 0 picks an
// ephemeral one): micro-batched queries, non-blocking edge updates via epoch
// snapshots, typed shed responses under overload. Query responses are
// bit-identical to `batch` rows for the same (version, estimator, seed, Z,
// query) tuple, so scripted streams diff cleanly against batch output.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/budget_extension.h"
#include "core/evaluate.h"
#include "core/multi.h"
#include "core/solver.h"
#include "gen/datasets.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "index/index_io.h"
#include "index/reliability_index.h"
#include "query/query_engine.h"
#include "query/query_set.h"
#include "sampling/reliability.h"
#include "serve/server.h"
#include "sampling/rss.h"
#include "sampling/world_view.h"

namespace relmax {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "relmax: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: relmax <gen|stats|estimate|solve|multi|budget|batch|"
               "index|serve> [--flags]\n"
               "run with a command to see its required flags\n");
  return 2;
}

StatusOr<UncertainGraph> LoadGraph(const Flags& flags) {
  const std::string path = flags.GetString("graph", "");
  if (path.empty()) return Status::InvalidArgument("--graph is required");
  return ReadEdgeList(path);
}

std::vector<NodeId> ParseNodeList(const std::string& csv) {
  std::vector<NodeId> nodes;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    nodes.push_back(
        static_cast<NodeId>(std::stoul(csv.substr(pos, comma - pos))));
    pos = comma + 1;
  }
  return nodes;
}

// Unknown flag values fail loudly: a typo like --estimator=rrs silently
// running Monte Carlo (the old behavior) is indistinguishable from success.
StatusOr<Estimator> ParseEstimator(const Flags& flags) {
  const std::string name = flags.GetString("estimator", "mc");
  if (name == "mc") return Estimator::kMonteCarlo;
  if (name == "rss") return Estimator::kRss;
  return Status::InvalidArgument("unknown --estimator (want mc|rss): " + name);
}

// --partitions must be a positive shard count; 0 or negative is a flag error,
// not a silent fallback to flat.
StatusOr<int> ParsePartitions(const Flags& flags) {
  const int partitions = static_cast<int>(flags.GetInt("partitions", 1));
  if (partitions <= 0) {
    return Status::InvalidArgument("--partitions must be >= 1");
  }
  return partitions;
}

// Warns (once per process) when the user asked for more shards than the graph
// has nodes — the partitioner clamps, so the run proceeds, but the extra
// shards the user asked for do not exist.
void WarnIfPartitionsExceedNodes(int partitions, const UncertainGraph& g) {
  static bool warned = false;
  if (warned || partitions <= static_cast<int>(g.num_nodes())) return;
  warned = true;
  std::fprintf(stderr,
               "relmax: --partitions %d exceeds the graph's %u nodes; "
               "clamping to %u shards\n",
               partitions, g.num_nodes(), g.num_nodes());
}

StatusOr<SolverOptions> OptionsFromFlags(const Flags& flags) {
  SolverOptions options;
  options.budget_k = static_cast<int>(flags.GetInt("k", 10));
  options.zeta = flags.GetDouble("zeta", 0.5);
  options.top_r = static_cast<int>(flags.GetInt("r", 100));
  options.top_l = static_cast<int>(flags.GetInt("l", 30));
  options.hop_h = static_cast<int>(flags.GetInt("h", 3));
  options.num_samples = static_cast<int>(flags.GetInt("samples", 500));
  options.elimination_samples =
      static_cast<int>(flags.GetInt("elim-samples", 500));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  options.reuse_worlds = flags.GetBool("reuse-worlds", true);
  auto partitions = ParsePartitions(flags);
  RELMAX_RETURN_IF_ERROR(partitions.status());
  options.num_partitions = *partitions;
  auto estimator = ParseEstimator(flags);
  RELMAX_RETURN_IF_ERROR(estimator.status());
  options.estimator = *estimator;
  return options;
}

int CmdGen(const Flags& flags) {
  const std::string name = flags.GetString("dataset", "");
  if (name == "list") {
    for (const std::string& d : DatasetNames()) std::printf("%s\n", d.c_str());
    return 0;
  }
  const std::string out = flags.GetString("out", "");
  if (name.empty() || out.empty()) {
    return Fail("gen requires --dataset and --out (see --dataset list)");
  }
  auto dataset = MakeDataset(name, flags.GetDouble("scale", 0.1),
                             static_cast<uint64_t>(flags.GetInt("seed", 42)));
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  const Status st = WriteEdgeList(dataset->graph, out);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("wrote %s: %u nodes, %zu edges (%s)\n", out.c_str(),
              dataset->graph.num_nodes(), dataset->graph.num_edges(),
              dataset->graph.directed() ? "directed" : "undirected");
  return 0;
}

int CmdStats(const Flags& flags) {
  auto graph = LoadGraph(flags);
  if (!graph.ok()) return Fail(graph.status().ToString());
  const GraphStats stats = ComputeGraphStats(*graph);
  TablePrinter table({"Stat", "Value"});
  table.AddRow({"nodes", Fmt(stats.num_nodes)});
  table.AddRow({"edges", Fmt(stats.num_edges)});
  table.AddRow({"prob mean", Fmt(stats.prob_mean)});
  table.AddRow({"prob sd", Fmt(stats.prob_sd)});
  table.AddRow({"prob quartiles", "{" + Fmt(stats.prob_q1) + ", " +
                                      Fmt(stats.prob_q2) + ", " +
                                      Fmt(stats.prob_q3) + "}"});
  table.AddRow({"avg shortest path", Fmt(stats.avg_spl, 2)});
  table.AddRow({"longest shortest path", Fmt(stats.longest_spl)});
  table.AddRow({"clustering coefficient",
                Fmt(stats.clustering_coefficient, 3)});
  table.Print();
  return 0;
}

int CmdEstimate(const Flags& flags) {
  auto graph = LoadGraph(flags);
  if (!graph.ok()) return Fail(graph.status().ToString());
  if (!flags.Has("s") || !flags.Has("t")) return Fail("need --s and --t");
  const NodeId s = static_cast<NodeId>(flags.GetInt("s", 0));
  const NodeId t = static_cast<NodeId>(flags.GetInt("t", 0));
  if (s >= graph->num_nodes() || t >= graph->num_nodes()) {
    return Fail("query node out of range");
  }
  const int samples = static_cast<int>(flags.GetInt("samples", 2000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int threads = static_cast<int>(flags.GetInt("threads", 1));
  // estimate never builds a bank, but the --partitions contract (reject <= 0)
  // holds on every command that admits the flag.
  const auto partitions = ParsePartitions(flags);
  if (!partitions.ok()) return Fail(partitions.status().ToString());
  WarnIfPartitionsExceedNodes(*partitions, *graph);
  const auto estimator = ParseEstimator(flags);
  if (!estimator.ok()) return Fail(estimator.status().ToString());
  WallTimer timer;
  double reliability;
  if (*estimator == Estimator::kRss) {
    reliability = EstimateReliabilityRss(
        *graph, s, t,
        {.num_samples = samples, .seed = seed, .num_threads = threads});
  } else {
    reliability = EstimateReliability(
        *graph, s, t,
        {.num_samples = samples, .seed = seed, .num_threads = threads});
  }
  std::printf("R(%u, %u) = %.4f   (%d samples, %.3f s)\n", s, t, reliability,
              samples, timer.ElapsedSeconds());
  return 0;
}

int CmdSolve(const Flags& flags) {
  auto graph = LoadGraph(flags);
  if (!graph.ok()) return Fail(graph.status().ToString());
  if (!flags.Has("s") || !flags.Has("t")) return Fail("need --s and --t");
  const NodeId s = static_cast<NodeId>(flags.GetInt("s", 0));
  const NodeId t = static_cast<NodeId>(flags.GetInt("t", 0));
  const auto options = OptionsFromFlags(flags);
  if (!options.ok()) return Fail(options.status().ToString());
  WarnIfPartitionsExceedNodes(options->num_partitions, *graph);
  const std::string method_name = flags.GetString("method", "be");
  CoreMethod method;
  if (method_name == "be") {
    method = CoreMethod::kBatchEdges;
  } else if (method_name == "ip") {
    method = CoreMethod::kIndividualPaths;
  } else if (method_name == "mrp") {
    method = CoreMethod::kMostReliablePath;
  } else {
    return Fail("unknown --method (want be|ip|mrp): " + method_name);
  }
  WallTimer timer;
  auto solution = MaximizeReliability(*graph, s, t, *options, method);
  if (!solution.ok()) return Fail(solution.status().ToString());
  std::printf("method %s: reliability %.4f -> %.4f (gain %.4f) in %.2f s\n",
              CoreMethodName(method), solution->reliability_before,
              solution->reliability_after, solution->gain(),
              timer.ElapsedSeconds());
  for (const Edge& e : solution->added_edges) {
    std::printf("  add %u -> %u (p = %.3f)\n", e.src, e.dst, e.prob);
  }
  std::printf("candidates: %zu after elimination, %zu on top-%d paths\n",
              solution->stats.candidate_edges,
              solution->stats.candidate_edges_after_path_filter,
              options->top_l);
  return 0;
}

int CmdMulti(const Flags& flags) {
  auto graph = LoadGraph(flags);
  if (!graph.ok()) return Fail(graph.status().ToString());
  const std::vector<NodeId> sources =
      ParseNodeList(flags.GetString("sources", ""));
  const std::vector<NodeId> targets =
      ParseNodeList(flags.GetString("targets", ""));
  if (sources.empty() || targets.empty()) {
    return Fail("need --sources a,b,... and --targets c,d,...");
  }
  const std::string agg_name = flags.GetString("aggregate", "avg");
  Aggregate aggregate;
  if (agg_name == "avg") {
    aggregate = Aggregate::kAverage;
  } else if (agg_name == "min") {
    aggregate = Aggregate::kMinimum;
  } else if (agg_name == "max") {
    aggregate = Aggregate::kMaximum;
  } else {
    return Fail("unknown --aggregate (want avg|min|max): " + agg_name);
  }
  const auto options = OptionsFromFlags(flags);
  if (!options.ok()) return Fail(options.status().ToString());
  WarnIfPartitionsExceedNodes(options->num_partitions, *graph);
  WallTimer timer;
  auto solution = MaximizeMultiReliability(*graph, sources, targets,
                                           aggregate, *options);
  if (!solution.ok()) return Fail(solution.status().ToString());
  std::printf("%s aggregate: %.4f -> %.4f (gain %.4f) in %.2f s\n",
              AggregateName(aggregate), solution->aggregate_before,
              solution->aggregate_after, solution->gain(),
              timer.ElapsedSeconds());
  for (const Edge& e : solution->added_edges) {
    std::printf("  add %u -> %u (p = %.3f)\n", e.src, e.dst, e.prob);
  }
  return 0;
}

int CmdBudget(const Flags& flags) {
  auto graph = LoadGraph(flags);
  if (!graph.ok()) return Fail(graph.status().ToString());
  if (!flags.Has("s") || !flags.Has("t")) return Fail("need --s and --t");
  const NodeId s = static_cast<NodeId>(flags.GetInt("s", 0));
  const NodeId t = static_cast<NodeId>(flags.GetInt("t", 0));
  BudgetOptions budget;
  budget.total_budget = flags.GetDouble("budget", 2.0);
  budget.max_edges = static_cast<int>(flags.GetInt("max-edges", 10));
  budget.units = static_cast<int>(flags.GetInt("units", 20));
  budget.max_edge_prob = flags.GetDouble("max-edge-prob", 0.95);
  const auto options = OptionsFromFlags(flags);
  if (!options.ok()) return Fail(options.status().ToString());
  WarnIfPartitionsExceedNodes(options->num_partitions, *graph);
  auto solution = MaximizeReliabilityWithProbabilityBudget(
      *graph, s, t, budget, *options);
  if (!solution.ok()) return Fail(solution.status().ToString());
  std::printf(
      "budget %.2f (used %.2f): reliability %.4f -> %.4f (gain %.4f)\n",
      budget.total_budget, solution->budget_used,
      solution->reliability_before, solution->reliability_after,
      solution->gain());
  for (const Edge& e : solution->added_edges) {
    std::printf("  add %u -> %u with allocated p = %.3f\n", e.src, e.dst,
                e.prob);
  }
  return 0;
}

// The WorldViewOptions an index file is keyed on, from the same flags batch
// uses, so `index save` / `index load` / `batch --index-file` agree.
StatusOr<WorldViewOptions> WorldOptionsFromFlags(const Flags& flags) {
  WorldViewOptions options;
  options.num_samples = static_cast<int>(flags.GetInt("samples", 2000));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  const auto partitions = ParsePartitions(flags);
  RELMAX_RETURN_IF_ERROR(partitions.status());
  options.num_partitions = *partitions;
  return options;
}

// Builds bank + index for --graph and writes them to --index-file
// (write-temp + rename; generation 1).
int CmdIndexSave(const Flags& flags) {
  auto graph = LoadGraph(flags);
  if (!graph.ok()) return Fail(graph.status().ToString());
  const std::string path = flags.GetString("index-file", "");
  if (path.empty()) return Fail("index save requires --index-file FILE");
  const auto world_options = WorldOptionsFromFlags(flags);
  if (!world_options.ok()) return Fail(world_options.status().ToString());
  WarnIfPartitionsExceedNodes(world_options->num_partitions, *graph);
  ReliabilityIndex::Options index_options;
  index_options.num_threads = world_options->num_threads;
  if (!ReliabilityIndex::Fits(*graph, world_options->num_samples,
                              index_options)) {
    return Fail("index save: label planes exceed the index byte cap");
  }
  WallTimer timer;
  const std::unique_ptr<WorldView> bank = MakeWorldView(*graph, *world_options);
  ReliabilityIndex index(*bank, index_options);
  const auto saved = SaveIndex(*bank, index, *world_options,
                               /*generation=*/1, path);
  if (!saved.ok()) return Fail(saved.status().ToString());
  std::printf(
      "saved %s: generation 1, %zu bytes (%d worlds, %d label bits, "
      "%zu label bytes, %d shards, %.3f s)\n",
      path.c_str(), *saved, index.num_worlds(), index.label_bits(),
      index.label_bytes(), bank->num_shards(), timer.ElapsedSeconds());
  return 0;
}

// Validates and mmap-loads --index-file against --graph — the full checksum
// and key validation, no sampling, no relabeling.
int CmdIndexLoad(const Flags& flags) {
  auto graph = LoadGraph(flags);
  if (!graph.ok()) return Fail(graph.status().ToString());
  const std::string path = flags.GetString("index-file", "");
  if (path.empty()) return Fail("index load requires --index-file FILE");
  const auto world_options = WorldOptionsFromFlags(flags);
  if (!world_options.ok()) return Fail(world_options.status().ToString());
  WarnIfPartitionsExceedNodes(world_options->num_partitions, *graph);
  ReliabilityIndex::Options index_options;
  index_options.num_threads = world_options->num_threads;
  WallTimer timer;
  auto loaded = LoadIndex(path, *graph, *world_options, index_options);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  std::printf(
      "loaded %s: generation %llu, %zu bytes (%d worlds, %d label bits, "
      "%zu label bytes, %d shards, %.3f s)\n",
      path.c_str(), static_cast<unsigned long long>(loaded->generation),
      loaded->file_bytes, loaded->index->num_worlds(),
      loaded->index->label_bits(), loaded->index->label_bytes(),
      loaded->bank->num_shards(), timer.ElapsedSeconds());
  return 0;
}

// Answers every query in --queries FILE (one `s t` per line, `#` comments)
// from one shared set of sampled worlds. One result row per query, in file
// order, then a stats line; rows are bit-identical for any --threads.
int CmdBatch(const Flags& flags) {
  auto graph = LoadGraph(flags);
  if (!graph.ok()) return Fail(graph.status().ToString());
  const std::string queries_path = flags.GetString("queries", "");
  if (queries_path.empty()) return Fail("batch requires --queries FILE");
  auto set = QuerySet::FromFile(queries_path);
  if (!set.ok()) return Fail(set.status().ToString());
  QueryEngineOptions options;
  options.num_samples = static_cast<int>(flags.GetInt("samples", 2000));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  options.reuse_worlds = flags.GetBool("reuse-worlds", true);
  options.use_index = flags.GetBool("index", false);
  options.index_file = flags.GetString("index-file", "");
  const auto partitions = ParsePartitions(flags);
  if (!partitions.ok()) return Fail(partitions.status().ToString());
  options.num_partitions = *partitions;
  WarnIfPartitionsExceedNodes(options.num_partitions, *graph);
  const auto estimator = ParseEstimator(flags);
  if (!estimator.ok()) return Fail(estimator.status().ToString());
  options.estimator = *estimator;
  QueryEngine engine(*graph, options);
  WallTimer timer;
  auto result = engine.Answer(*set);
  if (!result.ok()) return Fail(result.status().ToString());
  const std::vector<StQuery>& st = set->st_queries();
  for (size_t i = 0; i < st.size(); ++i) {
    std::printf("R(%u, %u) = %.4f\n", st[i].s, st[i].t, result->st_values[i]);
  }
  // Per-shard logical bank bytes: one entry for the flat bank, P entries for
  // a sharded one, `[]` when the batch never built a bank (fallback path).
  std::string shard_bytes = "[";
  for (size_t i = 0; i < result->stats.shard_bank_bytes.size(); ++i) {
    if (i > 0) shard_bytes += " ";
    shard_bytes += std::to_string(result->stats.shard_bank_bytes[i]);
  }
  shard_bytes += "]";
  std::printf(
      "batch: %zu queries, %zu distinct pairs, %zu floods, "
      "%zu fallback estimates, %zu index answers, "
      "%zu cache hits (%d samples, shard bank bytes %s, %.3f s)\n",
      result->stats.num_queries, result->stats.distinct_pairs,
      result->stats.floods, result->stats.fallback_estimates,
      result->stats.index_answers, result->stats.cache_hits,
      options.num_samples, shard_bytes.c_str(), timer.ElapsedSeconds());
  if (const ReliabilityIndex* index = engine.index()) {
    const ReliabilityIndex::Stats& istats = index->stats();
    std::printf(
        "index: %d worlds, %d label bits, %zu label bytes, "
        "%zu worlds relabeled, %zu reach floods\n",
        index->num_worlds(), index->label_bits(), index->label_bytes(),
        istats.worlds_relabeled, istats.reach_floods);
  }
  if (!options.index_file.empty()) {
    const IndexIoStats& io = engine.index_io_stats();
    std::printf(
        "index_io: %zu loads, %zu saves, %zu load failures, "
        "generation %llu, %zu file bytes\n",
        io.loads, io.saves, io.load_failures,
        static_cast<unsigned long long>(io.generation), io.file_bytes);
  }
  return 0;
}

// Runs the online query daemon: stdin/stdout line protocol by default, a
// sequential loopback TCP listener with --port (0 = ephemeral, port printed
// once bound). Engine flags match `batch` so answers diff cleanly against it.
int CmdServe(const Flags& flags) {
  auto graph = LoadGraph(flags);
  if (!graph.ok()) return Fail(graph.status().ToString());
  serve::ServeOptions options;
  options.engine.num_samples = static_cast<int>(flags.GetInt("samples", 2000));
  options.engine.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.engine.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  options.engine.reuse_worlds = flags.GetBool("reuse-worlds", true);
  options.engine.use_index = flags.GetBool("index", false);
  options.engine.index_file = flags.GetString("index-file", "");
  const auto partitions = ParsePartitions(flags);
  if (!partitions.ok()) return Fail(partitions.status().ToString());
  options.engine.num_partitions = *partitions;
  WarnIfPartitionsExceedNodes(options.engine.num_partitions, *graph);
  const auto estimator = ParseEstimator(flags);
  if (!estimator.ok()) return Fail(estimator.status().ToString());
  options.engine.estimator = *estimator;
  options.window_us = static_cast<int>(flags.GetInt("window-us", 2000));
  if (options.window_us < 0) return Fail("--window-us must be >= 0");
  const int64_t max_batch = flags.GetInt("max-batch", 256);
  if (max_batch < 1) return Fail("--max-batch must be >= 1");
  options.max_batch = static_cast<size_t>(max_batch);
  const int64_t max_queue = flags.GetInt("max-queue", 1024);
  if (max_queue < 0) return Fail("--max-queue must be >= 0");
  options.max_queue = static_cast<size_t>(max_queue);
  options.lanes = static_cast<int>(flags.GetInt("lanes", 1));
  if (options.lanes < 1) return Fail("--lanes must be >= 1");

  serve::Server server(std::move(*graph), options);
  if (flags.Has("port")) {
    const int64_t port = flags.GetInt("port", 0);
    if (port < 0 || port > 65535) return Fail("--port must be in [0, 65535]");
    const Status status = server.ServePort(
        static_cast<uint16_t>(port), [](uint16_t bound) {
          std::printf("serving on port %u\n", bound);
          std::fflush(stdout);
        });
    if (!status.ok()) return Fail(status.ToString());
  } else {
    const serve::ServeStats stats = server.Run(std::cin, std::cout);
    std::printf("%s\n", serve::StatsResponse(stats).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace relmax

int main(int argc, char** argv) {
  if (argc < 2) return relmax::Usage();
  const std::string command = argv[1];
  if (command == "index") {
    if (argc < 3) return relmax::Usage();
    const std::string sub = argv[2];
    relmax::Flags flags = relmax::Flags::Parse(argc - 2, argv + 2);
    if (sub == "save") return relmax::CmdIndexSave(flags);
    if (sub == "load") return relmax::CmdIndexLoad(flags);
    return relmax::Usage();
  }
  relmax::Flags flags = relmax::Flags::Parse(argc - 1, argv + 1);
  if (command == "gen") return relmax::CmdGen(flags);
  if (command == "stats") return relmax::CmdStats(flags);
  if (command == "estimate") return relmax::CmdEstimate(flags);
  if (command == "solve") return relmax::CmdSolve(flags);
  if (command == "multi") return relmax::CmdMulti(flags);
  if (command == "budget") return relmax::CmdBudget(flags);
  if (command == "batch") return relmax::CmdBatch(flags);
  if (command == "serve") return relmax::CmdServe(flags);
  return relmax::Usage();
}
