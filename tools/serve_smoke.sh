#!/usr/bin/env bash
# Smoke test for `relmax serve`: drives a scripted query stream into the
# daemon and diffs its answer rows against `relmax batch` on the same graph,
# queries, and engine flags — the serving determinism contract, end to end
# through the real CLI. Also checks the typed-shed path (--max-queue 0) and
# that an `update` republish changes subsequent answers without breaking the
# stream. Run under ASan (the serve-smoke CI job does) and a leaked thread,
# socket, or graph copy fails the job.
#
# usage: serve_smoke.sh /path/to/relmax [workdir]
set -euo pipefail

CLI=${1:?usage: serve_smoke.sh /path/to/relmax [workdir]}
WORK=${2:-$(mktemp -d)}
mkdir -p "$WORK"

SAMPLES=2000
SEED=5

# The README's Example-3 fixture: R(2,3) crosses one 0.3 edge, R(2,1) one
# 0.9 edge, everything else is disconnected.
cat > "$WORK/graph.txt" <<'EOF'
# relmax-graph v1
directed 4
2 1 0.9
2 3 0.3
EOF

cat > "$WORK/queries.txt" <<'EOF'
2 3
2 1
0 3
2 3
1 3
EOF

echo "== batch reference =="
"$CLI" batch --graph "$WORK/graph.txt" --queries "$WORK/queries.txt" \
  --samples $SAMPLES --seed $SEED | tee "$WORK/batch.out"

echo "== scripted serve stream =="
{
  echo "# serve-smoke scripted stream"
  while read -r s t; do echo "query $s $t"; done < "$WORK/queries.txt"
  echo "stats"
  echo "quit"
} > "$WORK/stream.txt"
"$CLI" serve --graph "$WORK/graph.txt" --samples $SAMPLES --seed $SEED \
  < "$WORK/stream.txt" | tee "$WORK/serve.out"

grep '^R(' "$WORK/batch.out" > "$WORK/batch.rows"
grep '^R(' "$WORK/serve.out" > "$WORK/serve.rows"
if ! diff -u "$WORK/batch.rows" "$WORK/serve.rows"; then
  echo "FAIL: serve answers differ from batch answers" >&2
  exit 1
fi
echo "OK: serve rows identical to batch rows"

grep -q '^OK bye$' "$WORK/serve.out" || {
  echo "FAIL: stream did not end with a clean OK bye" >&2; exit 1; }

echo "== shed path (--max-queue 0) =="
"$CLI" serve --graph "$WORK/graph.txt" --max-queue 0 \
  < "$WORK/stream.txt" | tee "$WORK/shed.out"
SHED=$(grep -c '^ERR Unavailable: shed' "$WORK/shed.out")
if [ "$SHED" -ne 5 ]; then
  echo "FAIL: expected 5 typed Unavailable shed responses, got $SHED" >&2
  exit 1
fi
grep -q '^OK bye$' "$WORK/shed.out" || {
  echo "FAIL: shed stream did not shut down cleanly" >&2; exit 1; }
echo "OK: all 5 queries shed with typed Unavailable, clean shutdown"

echo "== update republish changes subsequent answers =="
printf 'query 2 3\nupdate 2 3 0.9\nquery 2 3\nquit\n' | \
  "$CLI" serve --graph "$WORK/graph.txt" --samples $SAMPLES --seed $SEED \
  | tee "$WORK/update.out"
BEFORE=$(grep '^R(2, 3)' "$WORK/update.out" | head -1)
AFTER=$(grep '^R(2, 3)' "$WORK/update.out" | tail -1)
grep -q '^OK epoch=1' "$WORK/update.out" || {
  echo "FAIL: update did not publish epoch 1" >&2; exit 1; }
if [ "$BEFORE" = "$AFTER" ]; then
  echo "FAIL: answer unchanged after raising the edge probability" >&2
  exit 1
fi
echo "OK: '$BEFORE' -> '$AFTER' across the epoch publish"

echo "serve-smoke: PASS"
