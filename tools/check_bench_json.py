#!/usr/bin/env python3
"""Schema check for the bench JSON artifacts.

Validates three shapes, auto-detected from the top-level keys:

  repo    -- the checked-in BENCH_*.json perf-trajectory files:
             {description, entries: [entry, ...]}
  doc     -- the free-form checked-in records (BENCH_selection.json):
             {description, environment, ...} with a canonical environment
  entry   -- a single run entry, as written by `bench_batch_queries --json`:
             {label, command, environment, benchmarks}
  gbench  -- google-benchmark --benchmark_out output:
             {context: {...}, benchmarks: [{name, ...}, ...]}

Every `environment` block must have the canonical bench::EnvironmentJson
shape ({cpus_available, compiler, benchmark_library, note}) so the schema
cannot drift between files again. Used by the bench-smoke CI job and
runnable locally:

  python3 tools/check_bench_json.py BENCH_*.json /tmp/batch.json
"""
import json
import sys

ENVIRONMENT_KEYS = {
    "cpus_available": int,
    "compiler": str,
    "benchmark_library": str,
    "note": str,
}

# Per-label benchmark keys that must be present (and numeric) in every
# benchmark row of an entry with that label, so a bench harness cannot
# silently drop the columns the trajectory analysis reads.
LABEL_REQUIRED_KEYS = {
    "batch_vs_naive": ("naive_seconds", "batched_seconds", "speedup",
                       "bit_identical"),
    "index_io": ("build_seconds", "save_seconds", "load_seconds",
                 "speedup_load_vs_build", "file_bytes", "bit_identical"),
    "index_queries": ("naive_per_query_seconds", "flood_seconds",
                      "index_seconds", "index_build_seconds",
                      "speedup_index_vs_flood", "bit_identical"),
    "pr7_pre_simd_baseline": ("cpu_time_ms", "worlds_per_second"),
    "pr7_simd_frontier_kernels": ("cpu_time_ms", "worlds_per_second"),
    "sharded_flood": ("shards", "worlds_per_second", "peak_rss_bytes",
                      "bit_identical"),
    "serving": ("p50_ms", "p99_ms", "p999_ms", "qps", "shed",
                "bit_identical"),
}

# Every google-benchmark name the micro-kernel suite may emit (the part
# before the first '/'). A rename or typo in bench_micro_kernels.cc would
# otherwise sail through CI and silently orphan the checked-in trajectory
# rows that track it.
KNOWN_MICRO_BENCHMARKS = frozenset({
    "BM_MonteCarloReliability",
    "BM_MonteCarloReliabilityParallel",
    "BM_RssReliability",
    "BM_RssReliabilityParallel",
    "BM_ReliabilityFromSourceToAll",
    "BM_MostReliablePath",
    "BM_YenTopL",
    "BM_SearchSpaceElimination",
    "BM_ReachabilityFixpoint",
    "BM_ShardedFixpoint",
    "BM_WorldBankFill",
    "BM_WorldEnsembleBuild",
    "BM_IndexSave",
    "BM_IndexLoad",
})


class SchemaError(Exception):
    pass


def require(condition, message):
    if not condition:
        raise SchemaError(message)


def check_environment(env, where):
    require(isinstance(env, dict), f"{where}: environment must be an object")
    require(
        set(env) == set(ENVIRONMENT_KEYS),
        f"{where}: environment keys {sorted(env)} != canonical "
        f"{sorted(ENVIRONMENT_KEYS)}",
    )
    for key, expected_type in ENVIRONMENT_KEYS.items():
        require(
            isinstance(env[key], expected_type),
            f"{where}: environment.{key} must be {expected_type.__name__}",
        )


def check_benchmarks(benchmarks, where, label=None):
    require(isinstance(benchmarks, list) and benchmarks,
            f"{where}: benchmarks must be a non-empty array")
    required = LABEL_REQUIRED_KEYS.get(label, ())
    for i, bench in enumerate(benchmarks):
        require(isinstance(bench, dict), f"{where}: benchmarks[{i}] not an object")
        require(isinstance(bench.get("name"), str) and bench["name"],
                f"{where}: benchmarks[{i}] needs a non-empty string name")
        if bench["name"].startswith("BM_"):
            base = bench["name"].split("/", 1)[0]
            require(
                base in KNOWN_MICRO_BENCHMARKS,
                f"{where}: benchmarks[{i}] name '{base}' is not a known "
                f"micro-kernel benchmark (update KNOWN_MICRO_BENCHMARKS "
                f"when adding one)",
            )
        for key, value in bench.items():
            require(
                isinstance(value, (str, int, float, bool)),
                f"{where}: benchmarks[{i}].{key} must be a scalar",
            )
        for key in required:
            require(
                key in bench,
                f"{where}: benchmarks[{i}] (label '{label}') missing '{key}'",
            )


def check_entry(entry, where):
    require(isinstance(entry, dict), f"{where}: entry must be an object")
    for key in ("label", "command"):
        require(isinstance(entry.get(key), str) and entry[key],
                f"{where}: needs a non-empty string '{key}'")
    check_environment(entry.get("environment"), where)
    check_benchmarks(entry.get("benchmarks"), where, entry["label"])


def check_file(path):
    with open(path, "rb") as f:
        data = json.load(f)
    require(isinstance(data, dict), "top level must be an object")
    if "context" in data:  # google-benchmark output
        require(isinstance(data["context"], dict), "context must be an object")
        check_benchmarks(data.get("benchmarks"), "gbench")
        return "gbench"
    if "entries" in data:  # checked-in BENCH_*.json trajectory
        require(isinstance(data.get("description"), str) and data["description"],
                "repo file needs a non-empty description")
        require(isinstance(data["entries"], list) and data["entries"],
                "entries must be a non-empty array")
        for i, entry in enumerate(data["entries"]):
            check_entry(entry, f"entries[{i}]")
        return "repo"
    if "label" not in data and "description" in data:  # free-form record
        require(data["description"],
                "doc file needs a non-empty description")
        check_environment(data.get("environment"), "doc")
        return "doc"
    check_entry(data, "entry")  # bare single-run entry
    return "entry"


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            kind = check_file(path)
            print(f"{path}: OK ({kind} schema)")
        except (SchemaError, json.JSONDecodeError, OSError) as error:
            print(f"{path}: FAIL: {error}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
